// pgl-layout — the command-line layout tool, mirroring `odgi layout` with
// the paper's promised `--gpu` switch (Sec. VII-B: "a user can simply add
// the --gpu argument"). main() is flag parsing plus one driver::run_layout
// call: every execution mode — flat, multilevel, partitioned (in-process
// or multi-process), graph-cache conversion, and the internal
// --component-worker mode the process executor spawns — runs the same
// driver pipeline the serve daemon uses.
//
//   pgl-layout -i graph.gfa|graph.pgg -o graph.lay
//              [--backend NAME | --gpu[=a6000|a100]] [--kernel NAME]
//              [--iters N] [--factor F] [--threads N] [--seed N]
//              [--pin] [--numa off|auto|interleave|node:K]
//              [--save-graph FILE.pgg] [--load-graph FILE.pgg]
//              [--partition] [--component-workers N] [--processes N]
//              [--per-component-out DIR]
//              [--multilevel[=LEVELS]] [--refine-iters N] [--exact-tail]
//              [--svg out.svg] [--ppm out.ppm] [--stress] [--cdl]
//              [--progress] [--timing] [--trace out.json]
//              [--list-backends] [--list-kernels]
//
// Ingestion streams GFA 1.0/1.1 (S/L/P/W records, CRLF tolerant) directly
// into the engine-ready LeanGraph — the rich VariationGraph is never
// materialized — or loads a binary .pgg graph cache (auto-detected by
// extension, or forced with --load-graph). --save-graph writes the cache
// after ingestion so repeated runs of the same pangenome skip GFA parsing;
// with --save-graph and no -o the tool converts and exits. With
// --partition the graph is decomposed into connected components, each
// component is laid out by its own engine instance — spread across
// --component-workers threads, or farmed to --processes child worker
// processes — and the results are shelf-packed onto one canvas (see
// README "Execution drivers" for the determinism contract).
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "cli_common.hpp"
#include "core/engine.hpp"
#include "core/kernels/update_kernel.hpp"
#include "core/topology.hpp"
#include "driver/driver.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "telemetry/telemetry.hpp"

namespace {

void usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0 << " -i graph.gfa|graph.pgg -o layout.lay [options]\n"
        << "  --backend NAME      run a registered engine (see --list-backends)\n"
        << "  --kernel NAME       update kernel for batch-applying engines\n"
        << "                      (see --list-kernels; default scalar)\n"
        << "  --gpu[=a6000|a100]  alias for the optimized simulated GPU\n"
        << "  --cdl               alias for cpu-aos (cache-friendly store)\n"
        << "  --iters N           SGD iterations (default 30)\n"
        << "  --factor F          updates per iteration = F x total steps (default 10)\n"
        << "  --threads N         CPU Hogwild workers (default 1)\n"
        << "  --pin               pin pool workers to CPUs (best effort;\n"
        << "                      never changes the layout bytes)\n"
        << "  --numa MODE         NUMA memory placement: off (default), auto,\n"
        << "                      interleave, node:K (execution-only, like --pin)\n"
        << "  --seed N            PRNG seed\n"
        << "  --save-graph FILE   write the parsed graph as a binary .pgg cache\n"
        << "                      (with no -o: convert and exit)\n"
        << "  --load-graph FILE   load a .pgg cache instead of -i\n"
        << "  --partition         decompose into connected components, lay out\n"
        << "                      each with its own engine, stitch one canvas\n"
        << "  --component-workers N  components laid out concurrently (default 1)\n"
        << "  --processes N       farm components to N child worker processes\n"
        << "                      (byte-identical to the in-process run)\n"
        << "  --per-component-out DIR  also dump component_<k>.lay per component\n"
        << "  --multilevel[=LEVELS]  coarsen linear runs LEVELS times (default 1),\n"
        << "                      anneal the coarse graph, interpolate, refine\n"
        << "                      (composes with --partition: per component)\n"
        << "  --refine-iters N    full-resolution refinement iterations\n"
        << "                      (default max(2, iters / 2))\n"
        << "  --exact-tail        refine with the flat schedule's own tail\n"
        << "                      temperatures instead of the adaptive\n"
        << "                      run-length restart (bit-exact tail replay)\n"
        << "  --svg FILE          also render an SVG\n"
        << "  --ppm FILE          also render a PPM bitmap\n"
        << "  --stress            report sampled path stress with CI95\n"
        << "  --progress          print per-iteration (or, with --partition,\n"
        << "                      per-component) progress to stderr\n"
        << "  --timing            print a per-stage wall-clock summary to stderr\n"
        << "  --trace FILE        write a Chrome trace-event JSON of the run\n"
        << "                      (load in chrome://tracing or Perfetto)\n"
        << "  --list-backends     list registered engines and exit\n"
        << "  --list-kernels      list registered update kernels and exit\n";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pgl;
    driver::RunRequest req;
    req.backend.clear();  // resolved to cpu-soa after the alias flags
    std::string in_path, gpu_name, load_graph_path, trace_path;
    bool report_stress = false, progress = false, timing = false;
    bool processes_set = false;

    // CI's smoke loops consume the `--list-backends` / `--list-kernels`
    // output verbatim (`for x in $(pgl_layout --list-...)`), so the contract
    // is strict: exit 0, one registered name per line on stdout, nothing
    // else. Handle them before any other parsing so no other flag can
    // corrupt the listing.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--list-backends") {
            for (const auto& n : core::EngineRegistry::instance().names()) {
                std::cout << n << "\n";
            }
            return 0;
        }
        if (std::string(argv[i]) == "--list-kernels") {
            for (const auto& n : core::KernelRegistry::instance().names()) {
                std::cout << n << "\n";
            }
            return 0;
        }
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return cli::next_arg_or_die(argc, argv, i, arg,
                                        [&] { usage(argv[0]); });
        };
        if (arg == "-i") {
            in_path = next();
        } else if (arg == "-o") {
            req.out_path = next();
        } else if (arg == "--backend") {
            req.backend = next();
            gpu_name.clear();  // last flag wins over an earlier --gpu=NAME
        } else if (arg == "--gpu") {
            req.backend = "gpusim-optimized";
            gpu_name.clear();
        } else if (arg.rfind("--gpu=", 0) == 0) {
            req.backend = "gpusim-optimized";
            gpu_name = arg.substr(6);
            if (gpu_name != "a6000" && gpu_name != "a100") {
                std::cerr << "unknown GPU \"" << gpu_name
                          << "\" (expected a6000 or a100)\n";
                return 2;
            }
        } else if (arg == "--cdl") {
            req.backend = "cpu-aos";
            gpu_name.clear();
        } else if (arg == "--kernel") {
            req.config.kernel = next();
        } else if (arg == "--iters") {
            req.config.iter_max = cli::parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--factor") {
            req.config.steps_per_iter_factor = cli::parse_double_or_die(arg, next());
        } else if (arg == "--threads") {
            req.config.threads = cli::parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--pin") {
            req.config.pin = true;
        } else if (arg == "--numa") {
            req.config.numa = next();
        } else if (arg == "--seed") {
            req.config.seed = cli::parse_int_or_die<std::uint64_t>(arg, next());
        } else if (arg == "--save-graph") {
            req.save_graph_path = next();
        } else if (arg == "--load-graph") {
            load_graph_path = next();
        } else if (arg == "--partition") {
            req.partition = true;
        } else if (arg == "--component-workers") {
            req.component_workers = cli::parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--processes") {
            req.processes = cli::parse_int_or_die<std::uint32_t>(arg, next());
            req.executor = "process";
            processes_set = true;
        } else if (arg == "--per-component-out") {
            req.per_component_dir = next();
        } else if (arg == "--multilevel") {
            req.multilevel = true;
        } else if (arg.rfind("--multilevel=", 0) == 0) {
            req.multilevel = true;
            req.ml.levels = cli::parse_int_or_die<std::uint32_t>(
                "--multilevel", arg.c_str() + std::strlen("--multilevel="));
            if (req.ml.levels == 0) {
                std::cerr << "--multilevel=LEVELS requires LEVELS >= 1\n";
                return 2;
            }
        } else if (arg == "--refine-iters") {
            req.ml.refine_iters = cli::parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--exact-tail") {
            req.ml.exact_tail = true;
        } else if (arg == "--svg") {
            req.svg_path = next();
        } else if (arg == "--ppm") {
            req.ppm_path = next();
        } else if (arg == "--stress") {
            report_stress = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--component-worker") {
            req.component_worker = true;
        } else if (arg == "--worker-spec") {
            req.worker_spec = next();
        } else if (arg == "--status-fd") {
            req.status_fd = cli::parse_int_or_die<int>(arg, next());
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (!load_graph_path.empty()) {
        if (!in_path.empty()) {
            std::cerr << "-i and --load-graph are mutually exclusive\n";
            return 2;
        }
        in_path = load_graph_path;
        req.force_pgg = true;
    }
    req.graph_path = in_path;
    if (req.component_worker) {
        // The internal mode the process executor spawns: one component in,
        // one .lay out, status frames on --status-fd. All other flags are
        // carried by --worker-spec.
        if (req.graph_path.empty() || req.out_path.empty() ||
            req.worker_spec.empty()) {
            std::cerr << "--component-worker requires --load-graph, -o and "
                         "--worker-spec\n";
            return 2;
        }
        return driver::run_layout(req).worker_exit_code;
    }
    const bool convert_only = !req.save_graph_path.empty() && req.out_path.empty();
    if (req.graph_path.empty() || (req.out_path.empty() && !convert_only)) {
        std::cerr << "both -i (or --load-graph) and -o are required\n";
        usage(argv[0]);
        return 2;
    }
    if (!req.per_component_dir.empty() && !req.partition) {
        std::cerr << "--per-component-out requires --partition\n";
        return 2;
    }
    if (req.component_workers != 1 && !req.partition) {
        std::cerr << "--component-workers requires --partition\n";
        return 2;
    }
    if (processes_set && !req.partition) {
        std::cerr << "--processes requires --partition\n";
        return 2;
    }
    if (processes_set && req.processes == 0) {
        std::cerr << "--processes requires N >= 1\n";
        return 2;
    }
    if (req.ml.refine_iters != 0 && !req.multilevel) {
        std::cerr << "--refine-iters requires --multilevel\n";
        return 2;
    }
    if (req.ml.exact_tail && !req.multilevel) {
        std::cerr << "--exact-tail requires --multilevel\n";
        return 2;
    }
    if (req.backend.empty()) req.backend = "cpu-soa";
    try {
        core::parse_numa_policy(req.config.numa);
    } catch (const std::exception& e) {
        std::cerr << "--numa: " << e.what() << "\n";
        return 2;
    }
    if (!core::KernelRegistry::instance().contains(req.config.kernel)) {
        std::cerr << "unknown update kernel \"" << req.config.kernel
                  << "\"; available:";
        for (const auto& n : core::KernelRegistry::instance().names()) {
            std::cerr << " " << n;
        }
        std::cerr << "\n";
        return 2;
    }
    if (req.partition && gpu_name == "a100") {
        // The a100 variant is constructed with a non-default machine spec,
        // not through the registry the scheduler draws engines from.
        std::cerr << "--gpu=a100 is not supported with --partition "
                     "(use --gpu or --backend gpusim-optimized)\n";
        return 2;
    }
    if (gpu_name == "a100") {
        req.engine_factory = [] {
            return gpusim::make_gpusim_engine(gpusim::KernelConfig::optimized(),
                                              gpusim::a100());
        };
    }
    req.log = [](const std::string& line) { std::cerr << line << "\n"; };
    req.compute_stress = report_stress;
    if (progress) {
        req.iteration_progress = [](const core::IterationStats& s) {
            std::cerr << "iter " << (s.iteration + 1) << "/" << s.iter_max
                      << "  eta " << s.eta << "  updates " << s.updates
                      << "  skipped " << s.skipped << "\n";
        };
        req.component_progress = [](const partition::ComponentProgress& p) {
            std::cerr << "component " << p.completed << "/" << p.total
                      << " (id " << p.component << "): " << p.nodes
                      << " nodes, " << p.updates << " updates, " << p.seconds
                      << " s\n";
        };
    }

    // --trace captures every stage span of this run; enable before any work
    // so nothing is missed.
    if (!trace_path.empty()) telemetry::Tracer::instance().set_enabled(true);

    const auto t_start = std::chrono::steady_clock::now();
    try {
        const driver::RunOutcome outcome = driver::run_layout(req);
        if (outcome.convert_only) return 0;

        if (outcome.stress_computed) {
            std::cout << "sampled path stress: " << outcome.stress.value
                      << " [" << outcome.stress.ci_low << ", "
                      << outcome.stress.ci_high << "] over "
                      << outcome.stress.terms << " terms\n";
        }
        if (timing) {
#ifndef PGL_TELEMETRY_DISABLED
            // One stage per line, machine-parseable ("timing: <stage> <s> s"),
            // all read from the telemetry span histograms so every run mode —
            // flat, --partition, --multilevel, or combinations — reports
            // through the same path. Stage sums aggregate across components
            // (and, with --processes, across merged worker snapshots), so
            // they can exceed wall-clock with concurrency > 1.
            auto& reg = telemetry::Registry::instance();
            for (const char* stage :
                 {"parse", "coarsen", "layout", "interpolate", "refine",
                  "stitch", "metrics", "render"}) {
                const double s =
                    static_cast<double>(
                        reg.histogram(std::string("span.") + stage).sum()) /
                    1e9;
                std::cerr << "timing: " << stage << " " << s << " s\n";
            }
#else
            std::cerr << "timing: stage spans compiled out (PGL_TELEMETRY=OFF)\n";
#endif
            std::cerr << "timing: total " << seconds_since(t_start) << " s\n";
        }
        if (!trace_path.empty()) {
            if (telemetry::write_chrome_trace(trace_path)) {
                std::cerr << "wrote trace " << trace_path << "\n";
            } else {
                std::cerr << "error: failed to write trace " << trace_path
                          << "\n";
                return 1;
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}

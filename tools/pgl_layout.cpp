// pgl-layout — the command-line layout tool, mirroring `odgi layout` with
// the paper's promised `--gpu` switch (Sec. VII-B: "a user can simply add
// the --gpu argument").
//
//   pgl-layout -i graph.gfa -o graph.lay [--gpu[=a6000|a100]]
//              [--iters N] [--factor F] [--threads N] [--seed N]
//              [--svg out.svg] [--ppm out.ppm] [--stress] [--cdl]
//
// Reads a GFA v1 pangenome graph, computes the PG-SGD layout on the CPU
// (default, Hogwild multithreaded) or on the simulated GPU (--gpu), writes
// the binary .lay layout and optional renders, and reports sampled path
// stress when asked.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/cpu_engine.hpp"
#include "draw/ppm.hpp"
#include "draw/svg.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "io/lay_io.hpp"
#include "metrics/path_stress.hpp"

namespace {

void usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0 << " -i graph.gfa -o layout.lay [options]\n"
        << "  --gpu[=a6000|a100]  run on the simulated GPU (default: CPU)\n"
        << "  --cdl               CPU only: use the cache-friendly (AoS) store\n"
        << "  --iters N           SGD iterations (default 30)\n"
        << "  --factor F          updates per iteration = F x total steps (default 10)\n"
        << "  --threads N         CPU Hogwild workers (default 1)\n"
        << "  --seed N            PRNG seed\n"
        << "  --svg FILE          also render an SVG\n"
        << "  --ppm FILE          also render a PPM bitmap\n"
        << "  --stress            report sampled path stress with CI95\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pgl;
    std::string in_path, out_path, svg_path, ppm_path, gpu_name;
    bool use_gpu = false, use_cdl = false, report_stress = false;
    core::LayoutConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-i") {
            in_path = next();
        } else if (arg == "-o") {
            out_path = next();
        } else if (arg == "--gpu") {
            use_gpu = true;
            gpu_name = "a6000";
        } else if (arg.rfind("--gpu=", 0) == 0) {
            use_gpu = true;
            gpu_name = arg.substr(6);
        } else if (arg == "--cdl") {
            use_cdl = true;
        } else if (arg == "--iters") {
            cfg.iter_max = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--factor") {
            cfg.steps_per_iter_factor = std::atof(next());
        } else if (arg == "--threads") {
            cfg.threads = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--svg") {
            svg_path = next();
        } else if (arg == "--ppm") {
            ppm_path = next();
        } else if (arg == "--stress") {
            report_stress = true;
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (in_path.empty() || out_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        const auto vg = graph::read_gfa_file(in_path);
        const std::string problem = vg.validate();
        if (!problem.empty()) {
            std::cerr << "invalid graph: " << problem << "\n";
            return 1;
        }
        const auto g = graph::LeanGraph::from_graph(vg);
        std::cerr << "loaded " << g.node_count() << " nodes, " << g.path_count()
                  << " paths, " << g.total_path_steps() << " steps\n";

        core::Layout layout;
        if (use_gpu) {
            const gpusim::GpuSpec spec =
                gpu_name == "a100" ? gpusim::a100() : gpusim::rtx_a6000();
            gpusim::SimOptions sopt;
            sopt.counter_sample_period = 64;
            const auto r = gpusim::simulate_gpu_layout(
                g, cfg, gpusim::KernelConfig::optimized(), spec, sopt);
            layout = r.layout;
            std::cerr << "simulated " << spec.name << ": "
                      << r.counters.lane_updates << " updates, modeled "
                      << r.modeled_seconds << " s (host sim "
                      << r.sim_wall_seconds << " s)\n";
        } else {
            const auto r = core::layout_cpu(
                g, cfg, use_cdl ? core::CoordStore::kAoS : core::CoordStore::kSoA);
            layout = r.layout;
            std::cerr << "cpu layout: " << r.updates << " updates in "
                      << r.seconds << " s (" << cfg.threads << " threads)\n";
        }

        io::write_layout_file(layout, out_path);
        std::cerr << "wrote " << out_path << "\n";
        if (!svg_path.empty()) {
            draw::write_svg_file(g, layout, svg_path);
            std::cerr << "wrote " << svg_path << "\n";
        }
        if (!ppm_path.empty()) {
            draw::write_ppm_file(layout, ppm_path);
            std::cerr << "wrote " << ppm_path << "\n";
        }
        if (report_stress) {
            const auto sps = metrics::sampled_path_stress(g, layout);
            std::cout << "sampled path stress: " << sps.value << " ["
                      << sps.ci_low << ", " << sps.ci_high << "] over "
                      << sps.terms << " terms\n";
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}

// pgl-layout — the command-line layout tool, mirroring `odgi layout` with
// the paper's promised `--gpu` switch (Sec. VII-B: "a user can simply add
// the --gpu argument"). Every execution machine is driven through the
// common LayoutEngine interface; `--backend` selects any registered engine
// by name, while `--gpu` / `--cdl` remain as familiar aliases.
//
//   pgl-layout -i graph.gfa|graph.pgg -o graph.lay
//              [--backend NAME | --gpu[=a6000|a100]] [--kernel NAME]
//              [--iters N] [--factor F] [--threads N] [--seed N]
//              [--save-graph FILE.pgg] [--load-graph FILE.pgg]
//              [--partition] [--component-workers N] [--per-component-out DIR]
//              [--multilevel[=LEVELS]] [--refine-iters N] [--exact-tail]
//              [--svg out.svg] [--ppm out.ppm] [--stress] [--cdl]
//              [--progress] [--timing] [--trace out.json]
//              [--list-backends] [--list-kernels]
//
// Ingestion streams GFA 1.0/1.1 (S/L/P/W records, CRLF tolerant) directly
// into the engine-ready LeanGraph — the rich VariationGraph is never
// materialized — or loads a binary .pgg graph cache (auto-detected by
// extension, or forced with --load-graph). --save-graph writes the cache
// after ingestion so repeated runs of the same pangenome skip GFA parsing;
// with --save-graph and no -o the tool converts and exits. With
// --partition the graph is decomposed into connected components using the
// labels computed during ingestion, each component is laid out by its own
// engine instance — spread across --component-workers threads, largest
// component first — and the results are shelf-packed onto one canvas (see
// README "Partitioned whole-genome layout" for the determinism contract).
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <system_error>

#include "core/cpu_engine.hpp"
#include "core/engine.hpp"
#include "core/kernels/update_kernel.hpp"
#include "draw/ppm.hpp"
#include "draw/svg.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/gfa_stream.hpp"
#include "graph/lean_graph.hpp"
#include "io/lay_io.hpp"
#include "io/pgg_io.hpp"
#include "metrics/path_stress.hpp"
#include "multilevel/plan.hpp"
#include "partition/partition.hpp"
#include "telemetry/telemetry.hpp"

namespace {

void usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0 << " -i graph.gfa|graph.pgg -o layout.lay [options]\n"
        << "  --backend NAME      run a registered engine (see --list-backends)\n"
        << "  --kernel NAME       update kernel for batch-applying engines\n"
        << "                      (see --list-kernels; default scalar)\n"
        << "  --gpu[=a6000|a100]  alias for the optimized simulated GPU\n"
        << "  --cdl               alias for cpu-aos (cache-friendly store)\n"
        << "  --iters N           SGD iterations (default 30)\n"
        << "  --factor F          updates per iteration = F x total steps (default 10)\n"
        << "  --threads N         CPU Hogwild workers (default 1)\n"
        << "  --seed N            PRNG seed\n"
        << "  --save-graph FILE   write the parsed graph as a binary .pgg cache\n"
        << "                      (with no -o: convert and exit)\n"
        << "  --load-graph FILE   load a .pgg cache instead of -i\n"
        << "  --partition         decompose into connected components, lay out\n"
        << "                      each with its own engine, stitch one canvas\n"
        << "  --component-workers N  components laid out concurrently (default 1)\n"
        << "  --per-component-out DIR  also dump component_<k>.lay per component\n"
        << "  --multilevel[=LEVELS]  coarsen linear runs LEVELS times (default 1),\n"
        << "                      anneal the coarse graph, interpolate, refine\n"
        << "                      (composes with --partition: per component)\n"
        << "  --refine-iters N    full-resolution refinement iterations\n"
        << "                      (default max(2, iters / 2))\n"
        << "  --exact-tail        refine with the flat schedule's own tail\n"
        << "                      temperatures instead of the adaptive\n"
        << "                      run-length restart (bit-exact tail replay)\n"
        << "  --svg FILE          also render an SVG\n"
        << "  --ppm FILE          also render a PPM bitmap\n"
        << "  --stress            report sampled path stress with CI95\n"
        << "  --progress          print per-iteration (or, with --partition,\n"
        << "                      per-component) progress to stderr\n"
        << "  --timing            print a per-stage wall-clock summary to stderr\n"
        << "  --trace FILE        write a Chrome trace-event JSON of the run\n"
        << "                      (load in chrome://tracing or Perfetto)\n"
        << "  --list-backends     list registered engines and exit\n"
        << "  --list-kernels      list registered update kernels and exit\n";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

// Checked numeric option parsing. std::atoi silently turned garbage and
// out-of-range values into 0 and the run "succeeded" with a nonsense
// config; from_chars lets us reject both with a clear diagnostic.
template <typename T>
T parse_int_or_die(const std::string& flag, const char* text) {
    T value{};
    const char* end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range) {
        std::cerr << "value for " << flag << " is out of range: '" << text << "'\n";
        std::exit(2);
    }
    if (ec != std::errc() || ptr != end) {
        std::cerr << "invalid value for " << flag << ": '" << text
                  << "' (expected a non-negative integer)\n";
        std::exit(2);
    }
    return value;
}

double parse_double_or_die(const std::string& flag, const char* text) {
    double value = 0.0;
    const char* end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range) {
        std::cerr << "value for " << flag << " is out of range: '" << text << "'\n";
        std::exit(2);
    }
    if (ec != std::errc() || ptr != end) {
        std::cerr << "invalid value for " << flag << ": '" << text
                  << "' (expected a number)\n";
        std::exit(2);
    }
    return value;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pgl;
    std::string in_path, out_path, svg_path, ppm_path, backend, gpu_name;
    std::string per_component_dir, save_graph_path, load_graph_path, trace_path;
    bool report_stress = false, progress = false, partition_run = false;
    bool timing = false, multilevel_run = false;
    std::uint32_t component_workers = 1;
    multilevel::MultilevelOptions mlopt;
    core::LayoutConfig cfg;

    // CI's smoke loops consume the `--list-backends` / `--list-kernels`
    // output verbatim (`for x in $(pgl_layout --list-...)`), so the contract
    // is strict: exit 0, one registered name per line on stdout, nothing
    // else. Handle them before any other parsing so no other flag can
    // corrupt the listing.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--list-backends") {
            for (const auto& n : core::EngineRegistry::instance().names()) {
                std::cout << n << "\n";
            }
            return 0;
        }
        if (std::string(argv[i]) == "--list-kernels") {
            for (const auto& n : core::KernelRegistry::instance().names()) {
                std::cout << n << "\n";
            }
            return 0;
        }
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "option " << arg << " requires an argument\n";
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-i") {
            in_path = next();
        } else if (arg == "-o") {
            out_path = next();
        } else if (arg == "--backend") {
            backend = next();
            gpu_name.clear();  // last flag wins over an earlier --gpu=NAME
        } else if (arg == "--gpu") {
            backend = "gpusim-optimized";
            gpu_name.clear();
        } else if (arg.rfind("--gpu=", 0) == 0) {
            backend = "gpusim-optimized";
            gpu_name = arg.substr(6);
            if (gpu_name != "a6000" && gpu_name != "a100") {
                std::cerr << "unknown GPU \"" << gpu_name
                          << "\" (expected a6000 or a100)\n";
                return 2;
            }
        } else if (arg == "--cdl") {
            backend = "cpu-aos";
            gpu_name.clear();
        } else if (arg == "--kernel") {
            cfg.kernel = next();
        } else if (arg == "--iters") {
            cfg.iter_max = parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--factor") {
            cfg.steps_per_iter_factor = parse_double_or_die(arg, next());
        } else if (arg == "--threads") {
            cfg.threads = parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--seed") {
            cfg.seed = parse_int_or_die<std::uint64_t>(arg, next());
        } else if (arg == "--save-graph") {
            save_graph_path = next();
        } else if (arg == "--load-graph") {
            load_graph_path = next();
        } else if (arg == "--partition") {
            partition_run = true;
        } else if (arg == "--component-workers") {
            component_workers = parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--per-component-out") {
            per_component_dir = next();
        } else if (arg == "--multilevel") {
            multilevel_run = true;
        } else if (arg.rfind("--multilevel=", 0) == 0) {
            multilevel_run = true;
            mlopt.levels = parse_int_or_die<std::uint32_t>(
                "--multilevel", arg.c_str() + std::strlen("--multilevel="));
            if (mlopt.levels == 0) {
                std::cerr << "--multilevel=LEVELS requires LEVELS >= 1\n";
                return 2;
            }
        } else if (arg == "--refine-iters") {
            mlopt.refine_iters = parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--exact-tail") {
            mlopt.exact_tail = true;
        } else if (arg == "--svg") {
            svg_path = next();
        } else if (arg == "--ppm") {
            ppm_path = next();
        } else if (arg == "--stress") {
            report_stress = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (!load_graph_path.empty()) {
        if (!in_path.empty()) {
            std::cerr << "-i and --load-graph are mutually exclusive\n";
            return 2;
        }
        in_path = load_graph_path;
    }
    const bool convert_only = !save_graph_path.empty() && out_path.empty();
    if (in_path.empty() || (out_path.empty() && !convert_only)) {
        std::cerr << "both -i (or --load-graph) and -o are required\n";
        usage(argv[0]);
        return 2;
    }
    if (!per_component_dir.empty() && !partition_run) {
        std::cerr << "--per-component-out requires --partition\n";
        return 2;
    }
    if (component_workers != 1 && !partition_run) {
        std::cerr << "--component-workers requires --partition\n";
        return 2;
    }
    if (mlopt.refine_iters != 0 && !multilevel_run) {
        std::cerr << "--refine-iters requires --multilevel\n";
        return 2;
    }
    if (mlopt.exact_tail && !multilevel_run) {
        std::cerr << "--exact-tail requires --multilevel\n";
        return 2;
    }
    if (backend.empty()) backend = "cpu-soa";
    if (!core::KernelRegistry::instance().contains(cfg.kernel)) {
        std::cerr << "unknown update kernel \"" << cfg.kernel << "\"; available:";
        for (const auto& n : core::KernelRegistry::instance().names()) {
            std::cerr << " " << n;
        }
        std::cerr << "\n";
        return 2;
    }
    if (partition_run && gpu_name == "a100") {
        // The a100 variant is constructed with a non-default machine spec,
        // not through the registry the scheduler draws engines from.
        std::cerr << "--gpu=a100 is not supported with --partition "
                     "(use --gpu or --backend gpusim-optimized)\n";
        return 2;
    }

    // --trace captures every stage span of this run; enable before any work
    // so nothing is missed.
    if (!trace_path.empty()) telemetry::Tracer::instance().set_enabled(true);

    const auto t_start = std::chrono::steady_clock::now();
    try {
        // Streams GFA (or loads the .pgg cache — decided by extension)
        // straight into the LeanGraph; no VariationGraph is built.
        graph::LeanIngest ingest = [&] {
            telemetry::StageSpan span("parse", "cli");
            return !load_graph_path.empty() ? io::read_pgg_file(load_graph_path)
                                            : io::load_graph_file(in_path);
        }();
        const graph::LeanGraph& g = ingest.graph;
        std::cerr << "loaded " << g.node_count() << " nodes, " << g.path_count()
                  << " paths, " << g.total_path_steps() << " steps, "
                  << ingest.component_count << " components\n";
        if (!save_graph_path.empty()) {
            io::write_pgg_file(ingest, save_graph_path);
            std::cerr << "wrote graph cache " << save_graph_path << "\n";
            if (convert_only) return 0;
        }

        core::Layout final_layout;
        partition::PartitionResult part;
        if (partition_run) {
            partition::PartitionOptions popt;
            popt.schedule.backend = backend;
            popt.schedule.config = cfg;
            popt.schedule.workers = component_workers;
            popt.schedule.multilevel = multilevel_run;
            popt.schedule.multilevel_opt = mlopt;
            if (progress) {
                popt.progress = [](const partition::ComponentProgress& p) {
                    std::cerr << "component " << p.completed << "/" << p.total
                              << " (id " << p.component << "): " << p.nodes
                              << " nodes, " << p.updates << " updates, "
                              << p.seconds << " s\n";
                };
            }
            part = partition::partition_layout(
                g, partition::take_labels(ingest), popt);
            std::cerr << backend << ": " << part.decomposition.count()
                      << " components, " << part.updates << " updates in "
                      << part.seconds << " s (engine time "
                      << part.engine_seconds << " s), canvas "
                      << part.stitched.width << " x " << part.stitched.height
                      << "\n";
            final_layout = part.stitched.layout;
        } else {
            // `--gpu=a100` needs a non-default machine spec, so it constructs
            // the engine directly; every registered name goes via the
            // registry.
            std::unique_ptr<core::LayoutEngine> engine;
            if (gpu_name == "a100") {
                engine = gpusim::make_gpusim_engine(
                    gpusim::KernelConfig::optimized(), gpusim::a100());
            } else {
                engine = core::make_engine(backend);
            }

            if (progress) {
                engine->set_progress_hook([](const core::IterationStats& s) {
                    std::cerr << "iter " << (s.iteration + 1) << "/" << s.iter_max
                              << "  eta " << s.eta << "  updates " << s.updates
                              << "  skipped " << s.skipped << "\n";
                });
            }
            if (multilevel_run) {
                const multilevel::LayoutPlan plan = multilevel::build_plan(
                    cfg, mlopt,
                    static_cast<double>(g.max_path_nuc_length()));
                std::cerr << "multilevel plan: " << multilevel::describe(plan)
                          << "\n";
                multilevel::MultilevelResult ml =
                    multilevel::run_plan(plan, g, *engine, cfg);
                std::cerr << engine->name() << " (multilevel, ";
                for (std::size_t l = 0; l < ml.level_nodes.size(); ++l) {
                    std::cerr << (l ? " -> " : "") << ml.level_nodes[l];
                }
                std::cerr << " nodes): " << ml.updates << " updates in "
                          << ml.engine_seconds << " s\n";
                final_layout = std::move(ml.layout);
            } else {
                // The multilevel path gets its layout stage from run_plan's
                // per-pass spans; only the flat run is timed here.
                telemetry::StageSpan span("layout", "cli");
                engine->init(g, cfg);
                auto r = engine->run();
                std::cerr << engine->name() << ": " << r.updates
                          << " updates in " << r.seconds << " s\n";
                final_layout = std::move(r.layout);
            }
        }

        {
            telemetry::StageSpan span("render", "cli");
            io::write_layout_file(final_layout, out_path);
            std::cerr << "wrote " << out_path << "\n";
            if (!per_component_dir.empty()) {
                std::filesystem::create_directories(per_component_dir);
                for (std::uint32_t c = 0; c < part.decomposition.count(); ++c) {
                    const std::string path = per_component_dir + "/component_" +
                                             std::to_string(c) + ".lay";
                    io::write_layout_file(part.component_results[c].layout, path);
                }
                std::cerr << "wrote " << part.decomposition.count()
                          << " per-component layouts to " << per_component_dir
                          << "\n";
            }
            if (!svg_path.empty()) {
                draw::write_svg_file(g, final_layout, svg_path);
                std::cerr << "wrote " << svg_path << "\n";
            }
            if (!ppm_path.empty()) {
                draw::write_ppm_file(final_layout, ppm_path);
                std::cerr << "wrote " << ppm_path << "\n";
            }
        }

        if (report_stress) {
            const auto sps = [&] {
                telemetry::StageSpan span("metrics", "cli");
                return metrics::sampled_path_stress(g, final_layout);
            }();
            std::cout << "sampled path stress: " << sps.value << " ["
                      << sps.ci_low << ", " << sps.ci_high << "] over "
                      << sps.terms << " terms\n";
        }
        if (timing) {
#ifndef PGL_TELEMETRY_DISABLED
            // One stage per line, machine-parseable ("timing: <stage> <s> s"),
            // all read from the telemetry span histograms so every run mode —
            // flat, --partition, --multilevel, or combinations — reports
            // through the same path. Stage sums aggregate across components,
            // so they can exceed wall-clock with --component-workers > 1.
            auto& reg = telemetry::Registry::instance();
            for (const char* stage :
                 {"parse", "coarsen", "layout", "interpolate", "refine",
                  "stitch", "metrics", "render"}) {
                const double s =
                    static_cast<double>(
                        reg.histogram(std::string("span.") + stage).sum()) /
                    1e9;
                std::cerr << "timing: " << stage << " " << s << " s\n";
            }
#else
            std::cerr << "timing: stage spans compiled out (PGL_TELEMETRY=OFF)\n";
#endif
            std::cerr << "timing: total " << seconds_since(t_start) << " s\n";
        }
        if (!trace_path.empty()) {
            if (telemetry::write_chrome_trace(trace_path)) {
                std::cerr << "wrote trace " << trace_path << "\n";
            } else {
                std::cerr << "error: failed to write trace " << trace_path
                          << "\n";
                return 1;
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}

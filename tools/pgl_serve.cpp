// pgl-serve — the layout service daemon and its thin client. One long-lived
// process owns a worker pool and an on-disk artifact cache; clients submit
// layout jobs (graph + full layout config) over a unix socket speaking
// line-delimited JSON and fetch finished .lay artifacts. Results are
// byte-identical to a direct `pgl_layout` run for deterministic backends,
// and repeated submits of the same (graph, config) are served from the
// cache without running an engine.
//
//   pgl-serve serve    --socket S [--cache-dir D] [--workers N]
//                      [--graph-cache N]
//   pgl-serve submit   --socket S --graph FILE [config flags]
//                      [--wait] [-o OUT.lay]
//   pgl-serve status   --socket S --id N
//   pgl-serve cancel   --socket S --id N
//   pgl-serve stats    --socket S
//   pgl-serve ping     --socket S
//   pgl-serve shutdown --socket S
//   pgl-serve request  --socket S JSON      (raw protocol escape hatch)
//
// `submit` accepts the same layout vocabulary as pgl_layout: --backend,
// --kernel, --iters, --factor, --threads, --seed, --partition,
// --component-workers, --multilevel[=LEVELS], --refine-iters, --exact-tail.
// With --wait it blocks until the job is terminal, copies the artifact to
// -o if given, prints the final response JSON on stdout, and exits 0 only
// for state "done".
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "cli_common.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "telemetry/telemetry.hpp"

namespace {

pgl::serve::Daemon* g_daemon = nullptr;

void on_signal(int) {
    if (g_daemon) g_daemon->stop();
}

void usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0 << " COMMAND [options]\n"
        << "commands:\n"
        << "  serve     run the daemon\n"
        << "    --socket PATH       unix socket to listen on (required)\n"
        << "    --cache-dir DIR     artifact cache directory (default .pgl-cache)\n"
        << "    --workers N         concurrent layout jobs (default 2)\n"
        << "    --graph-cache N     parsed graphs kept in memory (default 4)\n"
        << "    --trace FILE        write a Chrome trace of the daemon's\n"
        << "                        lifetime (job spans + queue waits) on exit\n"
        << "  submit    submit a layout job\n"
        << "    --socket PATH --graph FILE [--backend NAME] [--kernel NAME]\n"
        << "    [--iters N] [--factor F] [--threads N] [--seed N]\n"
        << "    [--pin] [--numa off|auto|interleave|node:K]\n"
        << "    [--partition] [--component-workers N]\n"
        << "    [--executor thread|process] [--processes N]\n"
        << "    [--multilevel[=LEVELS]] [--refine-iters N] [--exact-tail]\n"
        << "    [--wait] [-o OUT.lay]\n"
        << "  status    --socket PATH --id N\n"
        << "  cancel    --socket PATH --id N\n"
        << "  stats     --socket PATH\n"
        << "  metrics   --socket PATH        full telemetry snapshot\n"
        << "  ping      --socket PATH\n"
        << "  shutdown  --socket PATH\n"
        << "  request   --socket PATH JSON   send one raw protocol line\n";
}

// Checked numeric parsing is shared with pgl_layout (tools/cli_common.hpp).
using pgl::cli::parse_double_or_die;
using pgl::cli::parse_int_or_die;

/// Sends one line and prints the response; returns 0 iff "ok": true.
int roundtrip(const std::string& socket_path, const std::string& line) {
    const std::string response = pgl::serve::send_request(socket_path, line);
    std::cout << response << "\n";
    const pgl::serve::JsonValue v = pgl::serve::json_parse(response);
    const pgl::serve::JsonValue* ok = v.find("ok");
    return ok && ok->as_bool() ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
    pgl::serve::DaemonOptions opt;
    opt.socket_path.clear();
    std::string trace_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return pgl::cli::next_arg_or_die(argc, argv, i, arg, [] {});
        };
        if (arg == "--socket") {
            opt.socket_path = next();
        } else if (arg == "--cache-dir") {
            opt.server.cache_dir = next();
        } else if (arg == "--workers") {
            opt.server.workers = parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--graph-cache") {
            opt.server.graph_cache_entries =
                parse_int_or_die<std::uint32_t>(arg, next());
        } else if (arg == "--trace") {
            trace_path = next();
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 2;
        }
    }
    if (opt.socket_path.empty()) {
        std::cerr << "serve requires --socket PATH\n";
        return 2;
    }
    if (!trace_path.empty()) {
        pgl::telemetry::Tracer::instance().set_enabled(true);
    }
    pgl::serve::Daemon daemon(std::move(opt));
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cerr << "pgl-serve: listening\n";
    daemon.run();
    g_daemon = nullptr;
    std::cerr << "pgl-serve: stopped\n";
    if (!trace_path.empty()) {
        if (pgl::telemetry::write_chrome_trace(trace_path)) {
            std::cerr << "wrote trace " << trace_path << "\n";
        } else {
            std::cerr << "error: failed to write trace " << trace_path << "\n";
            return 1;
        }
    }
    return 0;
}

int cmd_submit(int argc, char** argv) {
    using pgl::serve::JsonObject;
    using pgl::serve::JsonValue;
    std::string socket_path, graph, out_path;
    bool wait = false;
    JsonObject config;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return pgl::cli::next_arg_or_die(argc, argv, i, arg, [] {});
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--graph") {
            graph = next();
        } else if (arg == "-o") {
            out_path = next();
        } else if (arg == "--wait") {
            wait = true;
        } else if (arg == "--backend") {
            config["backend"] = JsonValue(std::string(next()));
        } else if (arg == "--kernel") {
            config["kernel"] = JsonValue(std::string(next()));
        } else if (arg == "--iters") {
            config["iters"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
        } else if (arg == "--factor") {
            config["factor"] = JsonValue(parse_double_or_die(arg, next()));
        } else if (arg == "--threads") {
            config["threads"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
        } else if (arg == "--pin") {
            config["pin"] = JsonValue(true);
        } else if (arg == "--numa") {
            config["numa"] = JsonValue(std::string(next()));
        } else if (arg == "--seed") {
            config["seed"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
        } else if (arg == "--partition") {
            config["partition"] = JsonValue(true);
        } else if (arg == "--component-workers") {
            config["component_workers"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
        } else if (arg == "--executor") {
            config["executor"] = JsonValue(std::string(next()));
        } else if (arg == "--processes") {
            config["processes"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
            config["executor"] = JsonValue(std::string("process"));
        } else if (arg == "--multilevel") {
            config["multilevel"] = JsonValue(std::uint64_t{1});
        } else if (arg.rfind("--multilevel=", 0) == 0) {
            config["multilevel"] = JsonValue(parse_int_or_die<std::uint64_t>(
                "--multilevel", arg.c_str() + std::strlen("--multilevel=")));
        } else if (arg == "--refine-iters") {
            config["refine_iters"] =
                JsonValue(parse_int_or_die<std::uint64_t>(arg, next()));
        } else if (arg == "--exact-tail") {
            config["exact_tail"] = JsonValue(true);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 2;
        }
    }
    if (socket_path.empty() || graph.empty()) {
        std::cerr << "submit requires --socket PATH and --graph FILE\n";
        return 2;
    }

    JsonObject req;
    req["cmd"] = JsonValue(std::string("submit"));
    req["graph"] = JsonValue(graph);
    req["config"] = JsonValue(std::move(config));
    std::string response =
        pgl::serve::send_request(socket_path, JsonValue(std::move(req)).dump());
    JsonValue v = pgl::serve::json_parse(response);
    const JsonValue* ok = v.find("ok");
    if (!ok || !ok->as_bool()) {
        std::cout << response << "\n";
        return 1;
    }

    if (wait) {
        JsonObject wreq;
        wreq["cmd"] = JsonValue(std::string("result"));
        wreq["id"] = JsonValue(v.find("id")->as_uint());
        wreq["wait"] = JsonValue(true);
        response = pgl::serve::send_request(socket_path,
                                            JsonValue(std::move(wreq)).dump());
        v = pgl::serve::json_parse(response);
    }
    std::cout << response << "\n";

    const JsonValue* state = v.find("state");
    if (wait && (!state || state->as_string() != "done")) return 1;
    if (!out_path.empty()) {
        const JsonValue* artifact = v.find("artifact");
        if (!artifact) {
            std::cerr << "no artifact in response (did you forget --wait?)\n";
            return 1;
        }
        std::filesystem::copy_file(
            artifact->as_string(), out_path,
            std::filesystem::copy_options::overwrite_existing);
        std::cerr << "copied " << artifact->as_string() << " -> " << out_path
                  << "\n";
    }
    return 0;
}

/// Shared driver for the fixed-shape commands (status/cancel need --id;
/// ping/stats/shutdown do not).
int cmd_simple(int argc, char** argv, const char* cmd, bool needs_id) {
    std::string socket_path;
    std::uint64_t id = 0;
    bool have_id = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return pgl::cli::next_arg_or_die(argc, argv, i, arg, [] {});
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--id") {
            id = parse_int_or_die<std::uint64_t>(arg, next());
            have_id = true;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 2;
        }
    }
    if (socket_path.empty() || (needs_id && !have_id)) {
        std::cerr << cmd << " requires --socket PATH"
                  << (needs_id ? " and --id N" : "") << "\n";
        return 2;
    }
    pgl::serve::JsonObject req;
    req["cmd"] = pgl::serve::JsonValue(std::string(cmd));
    if (needs_id) req["id"] = pgl::serve::JsonValue(id);
    return roundtrip(socket_path, pgl::serve::JsonValue(std::move(req)).dump());
}

int cmd_request(int argc, char** argv) {
    std::string socket_path, line;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            if (i + 1 >= argc) {
                std::cerr << "option --socket requires an argument\n";
                return 2;
            }
            socket_path = argv[++i];
        } else if (line.empty()) {
            line = arg;
        } else {
            std::cerr << "request takes exactly one JSON line\n";
            return 2;
        }
    }
    if (socket_path.empty() || line.empty()) {
        std::cerr << "request requires --socket PATH and a JSON line\n";
        return 2;
    }
    return roundtrip(socket_path, line);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "serve") return cmd_serve(argc, argv);
        if (cmd == "submit") return cmd_submit(argc, argv);
        if (cmd == "status") return cmd_simple(argc, argv, "status", true);
        if (cmd == "cancel") return cmd_simple(argc, argv, "cancel", true);
        if (cmd == "stats") return cmd_simple(argc, argv, "stats", false);
        if (cmd == "metrics") return cmd_simple(argc, argv, "metrics", false);
        if (cmd == "ping") return cmd_simple(argc, argv, "ping", false);
        if (cmd == "shutdown") return cmd_simple(argc, argv, "shutdown", false);
        if (cmd == "request") return cmd_request(argc, argv);
        if (cmd == "-h" || cmd == "--help") {
            usage(argv[0]);
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "unknown command: " << cmd << "\n";
    usage(argv[0]);
    return 2;
}

#pragma once
// Shared command-line helpers for the pgl tools (pgl_layout, pgl_serve).
// Checked numeric option parsing lived as near-identical copies in both
// tools; this header is the single definition, used for every numeric flag
// including the multi-process ones (--processes, --status-fd).
//
// std::atoi silently turned garbage and out-of-range values into 0 and the
// run "succeeded" with a nonsense config; std::from_chars lets us reject
// both with a clear diagnostic naming the flag. All helpers exit(2) — the
// tools' usage-error status — on bad input, so call them only from
// command-line parsing, never from library code.
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <system_error>

namespace pgl::cli {

template <typename T>
T parse_int_or_die(const std::string& flag, const char* text) {
    T value{};
    const char* end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range) {
        std::cerr << "value for " << flag << " is out of range: '" << text
                  << "'\n";
        std::exit(2);
    }
    if (ec != std::errc() || ptr != end) {
        std::cerr << "invalid value for " << flag << ": '" << text
                  << "' (expected a non-negative integer)\n";
        std::exit(2);
    }
    return value;
}

inline double parse_double_or_die(const std::string& flag, const char* text) {
    double value = 0.0;
    const char* end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range) {
        std::cerr << "value for " << flag << " is out of range: '" << text
                  << "'\n";
        std::exit(2);
    }
    if (ec != std::errc() || ptr != end) {
        std::cerr << "invalid value for " << flag << ": '" << text
                  << "' (expected a number)\n";
        std::exit(2);
    }
    return value;
}

/// Returns argv[++i] or dies with the tools' shared "requires an argument"
/// diagnostic (optionally printing a usage screen first via `usage`).
template <typename UsageFn>
const char* next_arg_or_die(int argc, char** argv, int& i,
                            const std::string& arg, UsageFn&& usage) {
    if (i + 1 >= argc) {
        std::cerr << "option " << arg << " requires an argument\n";
        usage();
        std::exit(2);
    }
    return argv[++i];
}

}  // namespace pgl::cli

#!/usr/bin/env bash
# Serve-smoke: end-to-end exercise of the pgl_serve daemon.
#
#   tools/ci/serve_smoke.sh BUILD_DIR [WORKDIR]
#
# What it proves:
#   * the daemon starts, answers ping, and survives a burst of >= 8
#     concurrent submits spanning every registered backend
#   * every daemon artifact is byte-identical to a direct `pgl_layout` run
#     of the same (graph, config) — the determinism contract
#   * a repeat submit of an already-computed config answers "cached":true
#     without re-running the engine
#   * cancel reaches a queued job and reports state "cancelled"
#   * the shutdown command exits the daemon with status 0, removes the
#     socket file, and leaves no pgl_serve process behind
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 BUILD_DIR [WORKDIR]" >&2
    exit 2
fi

BUILD="$1"
WORKDIR="${2:-/tmp/pgl_serve_smoke}"
SOCK="${WORKDIR}/serve.sock"
CACHE="${WORKDIR}/cache"
SERVE="${BUILD}/pgl_serve"
PGL="${BUILD}/pgl_layout"

rm -rf "${WORKDIR}"
mkdir -p "${WORKDIR}"

"${BUILD}/whole_genome_layout" "${WORKDIR}" 3 0.0002 cpu-batched
GFA="${WORKDIR}/whole_genome.gfa"

"${SERVE}" serve --socket "${SOCK}" --cache-dir "${CACHE}" --workers 2 \
    > "${WORKDIR}/daemon.log" 2>&1 &
DAEMON_PID=$!

cleanup() {
    kill "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 100); do
    if "${SERVE}" ping --socket "${SOCK}" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"${SERVE}" ping --socket "${SOCK}"

backends="$("${PGL}" --list-backends)"
test -n "${backends}"
echo "serve-smoke backends:" ${backends}

# --- concurrent burst: one job per backend + one duplicate config -------
# threads stays 1 so every backend (including the Hogwild scalar engines)
# is deterministic and the byte-identity check below is exact.
first_backend="$(echo "${backends}" | head -n 1)"
pids=()
names=()
for backend in ${backends} "${first_backend}"; do
    out="${WORKDIR}/serve.${backend}.${#pids[@]}.lay"
    "${SERVE}" submit --socket "${SOCK}" --graph "${GFA}" \
        --backend "${backend}" --iters 3 --factor 0.5 \
        --wait -o "${out}" > "${WORKDIR}/submit.${#pids[@]}.json" &
    pids+=($!)
    names+=("${backend}")
done
echo "submitted ${#pids[@]} concurrent jobs"
test "${#pids[@]}" -ge 8

fail=0
for i in "${!pids[@]}"; do
    if ! wait "${pids[$i]}"; then
        echo "job ${i} (${names[$i]}) failed:" >&2
        cat "${WORKDIR}/submit.${i}.json" >&2
        fail=1
    fi
done
test "${fail}" -eq 0

# --- byte identity vs direct pgl_layout runs ----------------------------
for backend in ${backends}; do
    "${PGL}" -i "${GFA}" -o "${WORKDIR}/direct.${backend}.lay" \
        --backend "${backend}" --iters 3 --factor 0.5 2>/dev/null
done
for i in "${!names[@]}"; do
    cmp "${WORKDIR}/serve.${names[$i]}.${i}.lay" \
        "${WORKDIR}/direct.${names[$i]}.lay"
done
echo "all ${#names[@]} daemon artifacts byte-identical to direct runs"

# --- cache hit on resubmit ----------------------------------------------
"${SERVE}" submit --socket "${SOCK}" --graph "${GFA}" \
    --backend "${first_backend}" --iters 3 --factor 0.5 --wait \
    > "${WORKDIR}/resubmit.json"
grep -q '"cached":true' "${WORKDIR}/resubmit.json"
echo "resubmit of ${first_backend} config served from cache"

# --- cancel a queued job ------------------------------------------------
# Occupy both workers with long jobs, then queue a victim: the cancel is
# guaranteed to land before the victim starts running.
long1=$("${SERVE}" submit --socket "${SOCK}" --graph "${GFA}" \
    --backend cpu-batched --iters 2000 --seed 101 |
    python3 -c "import sys,json;print(json.load(sys.stdin)['id'])")
long2=$("${SERVE}" submit --socket "${SOCK}" --graph "${GFA}" \
    --backend cpu-batched --iters 2000 --seed 102 |
    python3 -c "import sys,json;print(json.load(sys.stdin)['id'])")
victim=$("${SERVE}" submit --socket "${SOCK}" --graph "${GFA}" \
    --backend cpu-batched --iters 2000 --seed 103 |
    python3 -c "import sys,json;print(json.load(sys.stdin)['id'])")
"${SERVE}" cancel --socket "${SOCK}" --id "${victim}" | grep -q '"ok":true'
"${SERVE}" request --socket "${SOCK}" \
    "{\"cmd\":\"result\",\"id\":${victim},\"wait\":true}" |
    grep -q '"state":"cancelled"'
echo "queued job ${victim} cancelled (long jobs ${long1}, ${long2} left to shutdown)"

"${SERVE}" stats --socket "${SOCK}"

# --- clean shutdown -----------------------------------------------------
# The two long jobs are still running; shutdown must cancel them
# cooperatively and still exit promptly with status 0.
"${SERVE}" shutdown --socket "${SOCK}" | grep -q '"ok":true'
wait "${DAEMON_PID}"
rc=$?
trap - EXIT
test "${rc}" -eq 0
if [ -e "${SOCK}" ]; then
    echo "socket file leaked: ${SOCK}" >&2
    exit 1
fi
if pgrep -x pgl_serve >/dev/null; then
    echo "leaked pgl_serve process:" >&2
    pgrep -ax pgl_serve >&2
    exit 1
fi
echo "daemon exited 0, socket removed, no leaked processes"
cat "${WORKDIR}/daemon.log"
echo "serve-smoke OK"

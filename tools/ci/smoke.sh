#!/usr/bin/env bash
# Matrix-style smoke driver for CI: one script, one suite per argument,
# replacing the per-backend / per-kernel / ingest / multilevel loops that
# used to be copy-pasted across ci.yml steps.
#
#   tools/ci/smoke.sh BUILD_DIR SUITE [SUITE...]
#
# Suites:
#   backends    every registered backend: bench smoke + partitioned CLI run
#   kernels     every backend x every update kernel, scalar-vs-simd cmp
#   ingest      GFA -> .pgg cache -> byte-identical partitioned layout
#   multilevel  --multilevel reaches flat stress in less SGD wall-clock
#   telemetry   --trace writes valid JSON with nonzero engine counters
#   multiprocess  --processes matches the in-process run byte for byte,
#                 and a crashed worker fails loudly without stale output
#   numa        --pin / --numa placement never changes the bytes: pinned,
#               interleaved, node-bound and partitioned-placed runs all
#               byte-compare equal to the plain run
#
# The listing contract is strict on purpose: an empty or failing
# `--list-backends` / `--list-kernels` fails the suite, never silently
# runs zero iterations. Workdir defaults to /tmp (override with WORKDIR).
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 BUILD_DIR SUITE [SUITE...]" >&2
    echo "suites: backends kernels ingest multilevel telemetry multiprocess numa" >&2
    exit 2
fi

BUILD="$1"
shift
WORKDIR="${WORKDIR:-/tmp}"
mkdir -p "${WORKDIR}"
PGL="${BUILD}/pgl_layout"
GENOME="${WORKDIR}/whole_genome.gfa"

list_backends() {
    local out
    out="$("${PGL}" --list-backends)"
    test -n "${out}"
    echo "${out}"
}

list_kernels() {
    local out
    out="$("${PGL}" --list-kernels)"
    test -n "${out}"
    echo "${out}"
}

# Multi-component GFA shared by the backends/kernels/ingest suites;
# generated once per script run.
ensure_genome() {
    if [ ! -f "${GENOME}" ]; then
        "${BUILD}/whole_genome_layout" "${WORKDIR}" 3 0.0002 cpu-batched
    fi
}

suite_backends() {
    ensure_genome
    local backends
    backends="$(list_backends)"
    echo "registered backends:" ${backends}
    for backend in ${backends}; do
        echo "::group::${backend}"
        "${BUILD}/bench_backends" --quick --backend "${backend}"
        "${PGL}" -i "${GENOME}" -o "${WORKDIR}/${backend}.lay" \
            --partition --backend "${backend}" --component-workers 2 \
            --iters 3 --factor 0.5 --timing
        echo "::endgroup::"
    done
}

suite_kernels() {
    ensure_genome
    local backends kernels
    backends="$(list_backends)"
    kernels="$(list_kernels)"
    echo "registered kernels:" ${kernels}
    for backend in ${backends}; do
        echo "::group::${backend} kernels"
        # Every backend must accept every registered update kernel; scalar
        # and simd runs of the same backend must agree byte for byte (the
        # kernel-equivalence contract, checked end to end through the CLI).
        for kernel in ${kernels}; do
            "${PGL}" -i "${GENOME}" \
                -o "${WORKDIR}/${backend}.${kernel}.lay" \
                --backend "${backend}" --kernel "${kernel}" \
                --iters 3 --factor 0.5 --threads 2
        done
        # The Hogwild scalar engines are nondeterministic with threads > 1,
        # so the byte contract is asserted on the deterministic backends.
        if [ "${backend}" != "cpu-soa" ] && [ "${backend}" != "cpu-aos" ]; then
            cmp "${WORKDIR}/${backend}.scalar.lay" \
                "${WORKDIR}/${backend}.simd.lay"
        fi
        echo "::endgroup::"
    done
}

suite_ingest() {
    ensure_genome
    "${PGL}" -i "${GENOME}" --save-graph "${WORKDIR}/whole_genome.pgg"
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/from_gfa.lay" \
        --partition --iters 3 --factor 0.5
    "${PGL}" --load-graph "${WORKDIR}/whole_genome.pgg" \
        -o "${WORKDIR}/from_pgg.lay" --partition --iters 3 --factor 0.5
    cmp "${WORKDIR}/from_gfa.lay" "${WORKDIR}/from_pgg.lay"
    echo "GFA and .pgg partitioned layouts are byte-identical"
}

suite_multilevel() {
    # End-to-end CLI comparison on a segmentation-refined (sub=4)
    # whole-genome GFA: --multilevel must reach the flat run's final
    # sampled path stress within 5% while spending strictly less SGD
    # wall-clock (coarsen + layout + interpolate + refine vs flat layout).
    local mldir="${WORKDIR}/multilevel_smoke"
    mkdir -p "${mldir}"
    "${BUILD}/whole_genome_layout" "${mldir}" 1 0.001 cpu-batched 4
    local common="-i ${mldir}/whole_genome.gfa --backend cpu-pipelined \
                  --iters 6 --stress --timing"
    "${PGL}" ${common} -o "${mldir}/flat.lay" \
        > "${mldir}/flat.out" 2> "${mldir}/flat.log"
    "${PGL}" ${common} -o "${mldir}/ml.lay" --multilevel \
        > "${mldir}/ml.out" 2> "${mldir}/ml.log"
    cat "${mldir}/flat.out" "${mldir}/ml.out"
    grep '^timing:' "${mldir}/flat.log" "${mldir}/ml.log"
    MLDIR="${mldir}" python3 - <<'EOF'
import os
import re

mldir = os.environ["MLDIR"]

def stress(path):
    text = open(path).read()
    return float(re.search(r"sampled path stress: ([0-9.eE+-]+)", text)[1])

def stages(path):
    return {m[1]: float(m[2])
            for m in re.finditer(r"timing: (\S+) ([0-9.eE+-]+) s",
                                 open(path).read())}

flat_q = stress(f"{mldir}/flat.out")
ml_q = stress(f"{mldir}/ml.out")
flat_t = stages(f"{mldir}/flat.log")
ml_t = stages(f"{mldir}/ml.log")
flat_wall = flat_t["layout"]
ml_wall = sum(ml_t[s] for s in ("coarsen", "layout", "interpolate", "refine"))
print(f"stress: flat {flat_q:.4g}  multilevel {ml_q:.4g} "
      f"({ml_q / flat_q:.3f}x)")
print(f"sgd wall: flat {flat_wall:.3f} s  multilevel {ml_wall:.3f} s "
      f"({ml_wall / flat_wall:.3f}x)")
assert ml_q <= flat_q * 1.05, "multilevel stress >5% above flat"
assert ml_wall < flat_wall, "multilevel SGD wall not below flat"
EOF
}

suite_telemetry() {
    # The observability contract end to end: a partitioned multilevel run
    # with --trace must emit parseable Chrome-trace JSON whose embedded
    # registry snapshot shows the engines actually counted work, and the
    # trace must not perturb the layout (byte-compared against a run
    # without --trace).
    ensure_genome
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/telemetry_plain.lay" \
        --partition --component-workers 2 --multilevel \
        --iters 3 --factor 0.5
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/telemetry_traced.lay" \
        --partition --component-workers 2 --multilevel \
        --iters 3 --factor 0.5 --timing --trace "${WORKDIR}/telemetry.json"
    cmp "${WORKDIR}/telemetry_plain.lay" "${WORKDIR}/telemetry_traced.lay"
    echo "--trace does not perturb the layout (byte-identical)"
    TRACE="${WORKDIR}/telemetry.json" python3 - <<'EOF'
import json
import os

doc = json.load(open(os.environ["TRACE"]))
events = doc["traceEvents"]
assert doc.get("telemetryEnabled", False), "telemetry compiled out in CI build"
assert events, "trace has no events"
counters = doc["telemetry"]["counters"]
for name in ("engine.runs", "engine.updates", "partition.components"):
    assert counters.get(name, 0) > 0, f"counter {name} is zero"
names = {e.get("name") for e in events}
for span in ("parse", "coarsen", "layout", "interpolate", "refine", "render"):
    assert span in names, f"missing span {span!r}"
print(f"{len(events)} trace events, "
      f"{counters['engine.updates']} engine updates OK")
EOF
}

suite_multiprocess() {
    # The executor contract end to end through the CLI: the same partitioned
    # run through the in-process thread executor and through --processes
    # (fork/exec pgl_layout --component-worker children) must be
    # byte-identical — flat and multilevel — and a worker killed mid-run
    # (the PGL_COMPONENT_WORKER_CRASH test hook) must fail the parent with
    # a per-component diagnostic while leaving no output file behind.
    ensure_genome
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/mp_thread.lay" \
        --partition --component-workers 2 --iters 3 --factor 0.5
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/mp_process.lay" \
        --partition --processes 2 --iters 3 --factor 0.5 --timing
    cmp "${WORKDIR}/mp_thread.lay" "${WORKDIR}/mp_process.lay"
    echo "thread and process executors are byte-identical (flat)"
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/mp_thread_ml.lay" \
        --partition --component-workers 2 --multilevel --iters 3 --factor 0.5
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/mp_process_ml.lay" \
        --partition --processes 2 --multilevel --iters 3 --factor 0.5
    cmp "${WORKDIR}/mp_thread_ml.lay" "${WORKDIR}/mp_process_ml.lay"
    echo "thread and process executors are byte-identical (multilevel)"

    rm -f "${WORKDIR}/mp_crash.lay"
    if PGL_COMPONENT_WORKER_CRASH=/c0.lay "${PGL}" -i "${GENOME}" \
        -o "${WORKDIR}/mp_crash.lay" --partition --processes 2 \
        --iters 3 --factor 0.5 2> "${WORKDIR}/mp_crash.err"; then
        echo "crashed worker did not fail the parent" >&2
        exit 1
    fi
    grep -q "component 0" "${WORKDIR}/mp_crash.err"
    test ! -f "${WORKDIR}/mp_crash.lay"
    echo "crash containment OK: parent failed, no output published"
}

suite_numa() {
    # The placement guardrail end to end through the CLI: a fixed
    # (seed, threads) run must be byte-identical with pinning and NUMA
    # placement on, off, or any mix — on this runner's topology, whatever
    # it is (1-node machines exercise the degenerate paths, which must be
    # no-ops byte-wise too).
    ensure_genome
    local common="-i ${GENOME} --backend cpu-pipelined --threads 2 \
                  --iters 3 --factor 0.5"
    "${PGL}" ${common} -o "${WORKDIR}/numa_base.lay"
    "${PGL}" ${common} -o "${WORKDIR}/numa_pin.lay" --pin --numa auto --timing
    cmp "${WORKDIR}/numa_base.lay" "${WORKDIR}/numa_pin.lay"
    echo "--pin --numa auto is byte-identical to the plain run"
    "${PGL}" ${common} -o "${WORKDIR}/numa_off.lay" --numa off
    cmp "${WORKDIR}/numa_base.lay" "${WORKDIR}/numa_off.lay"
    echo "--numa off is a byte-exact no-op"
    "${PGL}" ${common} -o "${WORKDIR}/numa_node.lay" --pin --numa node:0
    cmp "${WORKDIR}/numa_base.lay" "${WORKDIR}/numa_node.lay"
    echo "--pin --numa node:0 is byte-identical to the plain run"
    # Partitioned: node-scheduled components must stitch the same canvas.
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/numa_part_base.lay" \
        --partition --component-workers 2 --iters 3 --factor 0.5
    "${PGL}" -i "${GENOME}" -o "${WORKDIR}/numa_part_pin.lay" \
        --partition --component-workers 2 --iters 3 --factor 0.5 \
        --pin --numa interleave
    cmp "${WORKDIR}/numa_part_base.lay" "${WORKDIR}/numa_part_pin.lay"
    echo "partitioned --pin --numa interleave is byte-identical"
    # A malformed policy must be rejected at the flag, not mid-run.
    if "${PGL}" ${common} -o "${WORKDIR}/numa_bad.lay" --numa bogus \
        2> "${WORKDIR}/numa_bad.err"; then
        echo "--numa bogus was not rejected" >&2
        exit 1
    fi
    grep -q "invalid numa policy" "${WORKDIR}/numa_bad.err"
    echo "malformed --numa rejected with a diagnostic"
}

for suite in "$@"; do
    case "${suite}" in
        backends) suite_backends ;;
        kernels) suite_kernels ;;
        ingest) suite_ingest ;;
        multilevel) suite_multilevel ;;
        telemetry) suite_telemetry ;;
        multiprocess) suite_multiprocess ;;
        numa) suite_numa ;;
        *)
            echo "unknown suite: ${suite}" >&2
            exit 2
            ;;
    esac
done
